package codec

import (
	"io"

	"rdlroute/internal/fanout"
	"rdlroute/internal/router"
)

// Wire representation of router options. Every field is optional: absent
// fields keep their router.DefaultOptions value, so an empty document
// decodes to the paper's experimental configuration. Booleans use
// pointers to distinguish "absent" from "false".
type optionsDoc struct {
	Schema         string      `json:"schema"`
	Weights        *weightsDoc `json:"weights,omitempty"`
	GlobalCells    *int        `json:"global_cells,omitempty"`
	Pitch          *int64      `json:"pitch,omitempty"`
	ViaCost        *float64    `json:"via_cost,omitempty"`
	UseWeights     *bool       `json:"use_weights,omitempty"`
	EnableLP       *bool       `json:"enable_lp,omitempty"`
	EnableVias     *bool       `json:"enable_vias,omitempty"`
	EnableStage2   *bool       `json:"enable_stage2,omitempty"`
	PeripheralDist *int64      `json:"peripheral_dist,omitempty"`
	LPMaxIters     *int        `json:"lp_max_iters,omitempty"`
	RipUpRounds    *int        `json:"ripup_rounds,omitempty"`
	NetOrder       string      `json:"net_order,omitempty"` // "shortest" | "longest" | "congested"
	Workers        *int        `json:"workers,omitempty"`   // 0 = GOMAXPROCS
	Speculative    *bool       `json:"speculative,omitempty"`
	// OrderPortfolio races the first N ordering-registry policies through
	// the sequential stage (0 = off, max router.MaxPortfolio). Unlike the
	// observational knobs above it changes results, so servers fold it
	// into the result-cache key.
	OrderPortfolio *int `json:"order_portfolio,omitempty"`
}

type weightsDoc struct {
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
	Gamma float64 `json:"gamma"`
	Delta float64 `json:"delta"`
}

func netOrderName(o router.NetOrder) string {
	switch o {
	case router.OrderLongest:
		return "longest"
	case router.OrderCongested:
		return "congested"
	default:
		return "shortest"
	}
}

// EncodeOptions writes opts as an rdl-options/v1 JSON document. Fields
// matching the defaults are still written, so a decoded copy is exact even
// if the defaults change later. The Tracer is not part of the wire format.
func EncodeOptions(w io.Writer, opts router.Options) error {
	doc := optionsDoc{
		Schema: OptionsSchema,
		Weights: &weightsDoc{
			Alpha: opts.Weights.Alpha, Beta: opts.Weights.Beta,
			Gamma: opts.Weights.Gamma, Delta: opts.Weights.Delta,
		},
		GlobalCells:    &opts.GlobalCells,
		Pitch:          &opts.Pitch,
		ViaCost:        &opts.ViaCost,
		UseWeights:     &opts.UseWeights,
		EnableLP:       &opts.EnableLP,
		EnableVias:     &opts.EnableVias,
		EnableStage2:   &opts.EnableStage2,
		PeripheralDist: &opts.PeripheralDist,
		LPMaxIters:     &opts.LPMaxIters,
		RipUpRounds:    &opts.RipUpRounds,
		NetOrder:       netOrderName(opts.NetOrder),
		Workers:        &opts.Workers,
		Speculative:    &opts.Speculative,
		OrderPortfolio: &opts.OrderPortfolio,
	}
	return writeDoc(w, OptionsSchema, doc)
}

// optionsFromDoc overlays the document on the defaults.
func optionsFromDoc(doc optionsDoc) (router.Options, error) {
	opts := router.DefaultOptions()
	if doc.Weights != nil {
		opts.Weights = fanout.WeightParams{
			Alpha: doc.Weights.Alpha, Beta: doc.Weights.Beta,
			Gamma: doc.Weights.Gamma, Delta: doc.Weights.Delta,
		}
	}
	if doc.GlobalCells != nil {
		if *doc.GlobalCells < 1 {
			return opts, invalidf(OptionsSchema, "global_cells", "must be >= 1, got %d", *doc.GlobalCells)
		}
		opts.GlobalCells = *doc.GlobalCells
	}
	if doc.Pitch != nil {
		if *doc.Pitch < 1 {
			return opts, invalidf(OptionsSchema, "pitch", "must be >= 1, got %d", *doc.Pitch)
		}
		opts.Pitch = *doc.Pitch
	}
	if doc.ViaCost != nil {
		opts.ViaCost = *doc.ViaCost
	}
	if doc.UseWeights != nil {
		opts.UseWeights = *doc.UseWeights
	}
	if doc.EnableLP != nil {
		opts.EnableLP = *doc.EnableLP
	}
	if doc.EnableVias != nil {
		opts.EnableVias = *doc.EnableVias
	}
	if doc.EnableStage2 != nil {
		opts.EnableStage2 = *doc.EnableStage2
	}
	if doc.PeripheralDist != nil {
		opts.PeripheralDist = *doc.PeripheralDist
	}
	if doc.LPMaxIters != nil {
		opts.LPMaxIters = *doc.LPMaxIters
	}
	if doc.RipUpRounds != nil {
		if *doc.RipUpRounds < 0 {
			return opts, invalidf(OptionsSchema, "ripup_rounds", "must be >= 0, got %d", *doc.RipUpRounds)
		}
		opts.RipUpRounds = *doc.RipUpRounds
	}
	if doc.Workers != nil {
		if *doc.Workers < 0 {
			return opts, invalidf(OptionsSchema, "workers", "must be >= 0, got %d", *doc.Workers)
		}
		opts.Workers = *doc.Workers
	}
	if doc.Speculative != nil {
		opts.Speculative = *doc.Speculative
	}
	if doc.OrderPortfolio != nil {
		if *doc.OrderPortfolio < 0 || *doc.OrderPortfolio > router.MaxPortfolio {
			return opts, invalidf(OptionsSchema, "order_portfolio",
				"must be in [0, %d], got %d", router.MaxPortfolio, *doc.OrderPortfolio)
		}
		opts.OrderPortfolio = *doc.OrderPortfolio
	}
	switch doc.NetOrder {
	case "", "shortest":
		opts.NetOrder = router.OrderShortest
	case "longest":
		opts.NetOrder = router.OrderLongest
	case "congested":
		opts.NetOrder = router.OrderCongested
	default:
		return opts, invalidf(OptionsSchema, "net_order",
			"unknown order %q (want \"shortest\", \"longest\" or \"congested\")", doc.NetOrder)
	}
	return opts, nil
}

// DecodeOptions reads an rdl-options/v1 document, overlaying it on
// router.DefaultOptions.
func DecodeOptions(r io.Reader) (router.Options, error) {
	var doc optionsDoc
	if err := decodeDoc(r, OptionsSchema, &doc); err != nil {
		return router.DefaultOptions(), err
	}
	return optionsFromDoc(doc)
}
