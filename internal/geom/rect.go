package geom

import "fmt"

// Rect is an axis-aligned rectangle with inclusive integer bounds
// X0 ≤ X1, Y0 ≤ Y1. A Rect with X0 > X1 or Y0 > Y1 is empty.
type Rect struct {
	X0, Y0, X1, Y1 int64
}

// RectOf returns the normalized rectangle spanning the two corner points.
func RectOf(a, b Point) Rect {
	return Rect{Min64(a.X, b.X), Min64(a.Y, b.Y), Max64(a.X, b.X), Max64(a.Y, b.Y)}
}

// RectWH returns the rectangle with lower-left corner (x, y), width w and
// height h.
func RectWH(x, y, w, h int64) Rect { return Rect{x, y, x + w, y + h} }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d]x[%d,%d]", r.X0, r.X1, r.Y0, r.Y1)
}

// Empty reports whether r contains no points.
func (r Rect) Empty() bool { return r.X0 > r.X1 || r.Y0 > r.Y1 }

// W returns the width of r (0 for degenerate vertical segments).
func (r Rect) W() int64 { return r.X1 - r.X0 }

// H returns the height of r.
func (r Rect) H() int64 { return r.Y1 - r.Y0 }

// Area returns the area of r, 0 if empty or degenerate.
func (r Rect) Area() int64 {
	if r.Empty() {
		return 0
	}
	return r.W() * r.H()
}

// Center returns the center of r (rounded toward the lower-left).
func (r Rect) Center() Point { return Point{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2} }

// Contains reports whether p lies in r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X <= r.X1 && p.Y >= r.Y0 && p.Y <= r.Y1
}

// ContainsRect reports whether q lies entirely inside r.
func (r Rect) ContainsRect(q Rect) bool {
	return q.X0 >= r.X0 && q.X1 <= r.X1 && q.Y0 >= r.Y0 && q.Y1 <= r.Y1
}

// Intersects reports whether r and q share at least one point
// (touching boundaries count).
func (r Rect) Intersects(q Rect) bool {
	return !r.Empty() && !q.Empty() &&
		r.X0 <= q.X1 && q.X0 <= r.X1 && r.Y0 <= q.Y1 && q.Y0 <= r.Y1
}

// Overlaps reports whether r and q share interior area (touching
// boundaries do not count).
func (r Rect) Overlaps(q Rect) bool {
	return !r.Empty() && !q.Empty() &&
		r.X0 < q.X1 && q.X0 < r.X1 && r.Y0 < q.Y1 && q.Y0 < r.Y1
}

// Intersect returns the intersection of r and q (possibly empty).
func (r Rect) Intersect(q Rect) Rect {
	return Rect{Max64(r.X0, q.X0), Max64(r.Y0, q.Y0), Min64(r.X1, q.X1), Min64(r.Y1, q.Y1)}
}

// Union returns the smallest rectangle containing both r and q.
func (r Rect) Union(q Rect) Rect {
	if r.Empty() {
		return q
	}
	if q.Empty() {
		return r
	}
	return Rect{Min64(r.X0, q.X0), Min64(r.Y0, q.Y0), Max64(r.X1, q.X1), Max64(r.Y1, q.Y1)}
}

// Expand grows r by d on every side (shrinks when d is negative).
func (r Rect) Expand(d int64) Rect {
	return Rect{r.X0 - d, r.Y0 - d, r.X1 + d, r.Y1 + d}
}

// Corners returns the four corner points of r in counter-clockwise order
// starting from the lower-left corner.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.X0, r.Y0}, {r.X1, r.Y0}, {r.X1, r.Y1}, {r.X0, r.Y1},
	}
}

// DistToPoint returns the Euclidean distance from p to the closest point
// of r (0 when p is inside).
func (r Rect) DistToPoint(p Point) float64 {
	dx := int64(0)
	if p.X < r.X0 {
		dx = r.X0 - p.X
	} else if p.X > r.X1 {
		dx = p.X - r.X1
	}
	dy := int64(0)
	if p.Y < r.Y0 {
		dy = r.Y0 - p.Y
	} else if p.Y > r.Y1 {
		dy = p.Y - r.Y1
	}
	if dx == 0 {
		return float64(dy)
	}
	if dy == 0 {
		return float64(dx)
	}
	return EuclidF(PointF{}, PointF{float64(dx), float64(dy)})
}
