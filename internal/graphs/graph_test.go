package graphs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rdlroute/internal/dsu"
)

func TestPrimMSTSimple(t *testing.T) {
	// Square with a cheap diagonal: 0-1(1), 1-2(1), 2-3(1), 3-0(10), 0-2(0.5)
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 0, 10)
	g.AddEdge(0, 2, 0.5)
	t1 := PrimMST(g)
	if len(t1.Edges) != 3 {
		t.Fatalf("tree edges = %d, want 3", len(t1.Edges))
	}
	total := 0.0
	for _, e := range t1.Edges {
		total += e.W
	}
	if math.Abs(total-2.5) > 1e-12 {
		t.Errorf("MST weight = %v, want 2.5", total)
	}
}

func TestPrimMSTForest(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 2)
	// vertex 4 isolated
	f := PrimMST(g)
	if len(f.Edges) != 2 {
		t.Fatalf("forest edges = %d, want 2", len(f.Edges))
	}
	if f.Path(0, 2) != nil {
		t.Error("cross-component path must be nil")
	}
	if p := f.Path(4, 4); len(p) != 1 || p[0] != 4 {
		t.Error("trivial path on isolated vertex")
	}
}

func TestTreePath(t *testing.T) {
	// Path graph 0-1-2-3-4.
	g := NewGraph(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1, float64(i+1))
	}
	tr := PrimMST(g)
	p := tr.Path(0, 4)
	want := []int{0, 1, 2, 3, 4}
	if len(p) != len(want) {
		t.Fatalf("path = %v", p)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
	if got := tr.PathLen(0, 4); math.Abs(got-10) > 1e-12 {
		t.Errorf("PathLen = %v, want 10", got)
	}
	if got := tr.PathLen(4, 0); math.Abs(got-10) > 1e-12 {
		t.Errorf("reverse PathLen = %v", got)
	}
}

func TestMSTWeightMatchesKruskalProperty(t *testing.T) {
	// Prim's MST weight must equal a straightforward Kruskal implementation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := NewGraph(n)
		var edges []Edge
		// A random connected graph: spanning chain + extras.
		for i := 1; i < n; i++ {
			w := rng.Float64() * 100
			g.AddEdge(i-1, i, w)
			edges = append(edges, Edge{i - 1, i, w})
		}
		for k := 0; k < n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			w := rng.Float64() * 100
			g.AddEdge(u, v, w)
			edges = append(edges, Edge{u, v, w})
		}
		prim := 0.0
		tr := PrimMST(g)
		for _, e := range tr.Edges {
			prim += e.W
		}
		kruskal := kruskalWeight(n, edges)
		return math.Abs(prim-kruskal) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func kruskalWeight(n int, edges []Edge) float64 {
	// Sort by weight (insertion sort adequate for test sizes).
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && edges[j].W < edges[j-1].W; j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	d := dsu.New(n)
	total := 0.0
	for _, e := range edges {
		if d.Union(e.U, e.V) {
			total += e.W
		}
	}
	return total
}

func TestEdgesDeterministic(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(3, 1, 2)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 0, 5) // parallel edge
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("edges = %v", es)
	}
	if es[0].U != 0 || es[0].V != 2 || es[2].U != 1 || es[2].V != 3 {
		t.Errorf("edge order = %v", es)
	}
}
