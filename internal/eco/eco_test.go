package eco_test

import (
	"bytes"
	"context"
	"testing"

	"rdlroute/internal/codec"
	"rdlroute/internal/design"
	"rdlroute/internal/eco"
	"rdlroute/internal/geom"
	"rdlroute/internal/router"
)

func dense(t *testing.T, name string) *design.Design {
	t.Helper()
	spec, err := design.DenseSpec(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// stableBytes encodes a result with the volatile fields (runtime, obs
// snapshot) zeroed, mirroring the qa oracle's comparison.
func stableBytes(t *testing.T, res *router.Result) []byte {
	t.Helper()
	c := *res
	c.Runtime = 0
	c.Obs = nil
	var buf bytes.Buffer
	if err := codec.EncodeResult(&buf, &c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// oneNetEdit returns a delta moving one I/O pad by one lattice pitch — the
// canonical 1-net ECO — picking the first pad whose move keeps the design
// valid.
func oneNetEdit(t *testing.T, d *design.Design) *eco.Delta {
	t.Helper()
	pitch := int64(design.Grid)
	for pi := range d.IOPads {
		for _, off := range []geom.Point{geom.Pt(pitch, 0), geom.Pt(-pitch, 0), geom.Pt(0, pitch), geom.Pt(0, -pitch)} {
			to := geom.Pt(d.IOPads[pi].Center.X+off.X, d.IOPads[pi].Center.Y+off.Y)
			dl := &eco.Delta{MoveIOPads: []eco.MovePad{{Index: pi, To: to}}}
			if _, err := eco.Apply(d, dl); err == nil {
				return dl
			}
		}
	}
	t.Fatal("no valid one-pad move found")
	return nil
}

// TestRerouteByteIdentical is the subsystem's core contract: an incremental
// reroute of an edited design is byte-identical — same lattice fingerprint,
// same encoded result — to a cold full route of that design, and serves a
// substantial share of its searches from the memo.
func TestRerouteByteIdentical(t *testing.T) {
	ctx := context.Background()
	base := dense(t, "dense1")
	opts := router.DefaultOptions()

	plan, err := eco.Route(ctx, base, opts)
	if err != nil {
		t.Fatal(err)
	}
	if h, m, _ := plan.MemoStats(); h != 0 || m == 0 {
		t.Fatalf("cold plan: hits=%d misses=%d, want 0 hits and >0 misses", h, m)
	}

	// The cold plan itself must match a plain (un-memoized) route.
	coldRes, coldFP, err := router.RouteFingerprint(ctx, base, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Fingerprint != coldFP {
		t.Fatalf("recording changed the route: fp %#x != cold %#x", plan.Fingerprint, coldFP)
	}
	if !bytes.Equal(stableBytes(t, plan.Result), stableBytes(t, coldRes)) {
		t.Fatal("recording changed the encoded result")
	}

	dl := oneNetEdit(t, base)
	edited, err := eco.Apply(base, dl)
	if err != nil {
		t.Fatal(err)
	}

	inc, err := plan.Reroute(ctx, dl, opts)
	if err != nil {
		t.Fatal(err)
	}
	eCold, eFP, err := router.RouteFingerprint(ctx, edited, opts)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Fingerprint != eFP {
		t.Fatalf("incremental fp %#x != cold fp %#x", inc.Fingerprint, eFP)
	}
	if !bytes.Equal(stableBytes(t, inc.Result), stableBytes(t, eCold)) {
		t.Fatal("incremental result bytes differ from cold route of edited design")
	}
	hits, misses, _ := inc.MemoStats()
	if hits == 0 {
		t.Fatalf("1-net edit reroute had no memo hits (misses=%d)", misses)
	}
	t.Logf("reroute memo: %d hits, %d misses", hits, misses)

	// Chain a second edit off the incremental plan: plans must compose.
	dl2 := oneNetEdit(t, inc.Design)
	inc2, err := inc.Reroute(ctx, dl2, opts)
	if err != nil {
		t.Fatal(err)
	}
	edited2, err := eco.Apply(inc.Design, dl2)
	if err != nil {
		t.Fatal(err)
	}
	_, e2FP, err := router.RouteFingerprint(ctx, edited2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if inc2.Fingerprint != e2FP {
		t.Fatalf("chained reroute fp %#x != cold fp %#x", inc2.Fingerprint, e2FP)
	}
}

// TestRerouteWithRipUp exercises the candidate-lattice path: rip-up rounds
// rebuild lattices mid-flow, which must journal and memoize identically.
func TestRerouteWithRipUp(t *testing.T) {
	ctx := context.Background()
	base := dense(t, "dense2")
	opts := router.DefaultOptions()
	opts.RipUpRounds = 3

	plan, err := eco.Route(ctx, base, opts)
	if err != nil {
		t.Fatal(err)
	}
	dl := oneNetEdit(t, base)
	edited, err := eco.Apply(base, dl)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := plan.Reroute(ctx, dl, opts)
	if err != nil {
		t.Fatal(err)
	}
	eCold, eFP, err := router.RouteFingerprint(ctx, edited, opts)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Fingerprint != eFP {
		t.Fatalf("incremental fp %#x != cold fp %#x", inc.Fingerprint, eFP)
	}
	if !bytes.Equal(stableBytes(t, inc.Result), stableBytes(t, eCold)) {
		t.Fatal("incremental result bytes differ from cold route (rip-up enabled)")
	}
}

func TestApplyRemovalsRemap(t *testing.T) {
	base := dense(t, "dense1")
	// Removing net 0 must renumber fixed-via owners and survive validation.
	d2, err := eco.Apply(base, &eco.Delta{RemoveNets: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Nets) != len(base.Nets)-1 {
		t.Fatalf("nets %d, want %d", len(d2.Nets), len(base.Nets)-1)
	}
	if base.Nets[1] != d2.Nets[0] {
		t.Fatal("net table did not shift")
	}
	// Removing a referenced pad must fail.
	ref := base.Nets[0].P1
	if ref.Kind == design.IOKind {
		if _, err := eco.Apply(base, &eco.Delta{RemoveIOPads: []int{ref.Index}}); err == nil {
			t.Fatal("removing a referenced pad succeeded")
		}
	}
	// Out-of-range and duplicate removals must fail.
	if _, err := eco.Apply(base, &eco.Delta{RemoveNets: []int{len(base.Nets)}}); err == nil {
		t.Fatal("out-of-range removal succeeded")
	}
	if _, err := eco.Apply(base, &eco.Delta{RemoveNets: []int{1, 1}}); err == nil {
		t.Fatal("duplicate removal succeeded")
	}
	// Base design is never mutated.
	if base.Nets[0].ID == d2.Nets[0].ID {
		t.Fatal("apply mutated the base design")
	}
}
