package ctile

import (
	"math"

	"rdlroute/internal/geom"
	"rdlroute/internal/graphs"
)

// ViaSite is an inserted via column: a position where the router may
// change layers, usable between wire layers [L0, L1] (paper III-C-3).
type ViaSite struct {
	Cell   int
	P      geom.Point
	L0, L1 int
}

// InsertVias performs the paper's via insertion: for every global cell,
// place a via at the center of the largest tile in the cell and project it
// through upper and lower layers until a blockage (a layer where the point
// is not in free space) stops it.
func (m *Model) InsertVias() []ViaSite {
	var sites []ViaSite
	for c := 0; c < m.CellsX*m.CellsY; c++ {
		bestLayer, bestIdx := -1, -1
		bestArea := 0.0
		for l := 0; l < m.D.WireLayers; l++ {
			for i, t := range m.Tiles(l, c) {
				if a := t.Area(); a > bestArea {
					bestArea = a
					bestLayer, bestIdx = l, i
				}
			}
		}
		if bestLayer < 0 {
			continue
		}
		p := m.Tiles(bestLayer, c)[bestIdx].Center()
		l0, l1 := bestLayer, bestLayer
		for l0 > 0 {
			if _, ok := m.TileAt(l0-1, p); !ok {
				break
			}
			l0--
		}
		for l1 < m.D.WireLayers-1 {
			if _, ok := m.TileAt(l1+1, p); !ok {
				break
			}
			l1++
		}
		if l1 > l0 {
			sites = append(sites, ViaSite{Cell: c, P: p, L0: l0, L1: l1})
		}
	}
	return sites
}

// minTouch is the minimum shared-boundary extent for two tiles to count as
// connected (a wire must fit through).
func (m *Model) minTouch() int64 { return m.D.Rules.WireWidth }

// adjacent reports whether two tiles on the same layer touch along a
// usable boundary. Both tiles must be canonical (as stored by Tiles).
func (m *Model) adjacent(a geom.Oct8, abb geom.Rect, b geom.Oct8, bbb geom.Rect) bool {
	if !abb.Expand(1).Intersects(bbb) {
		return false
	}
	in := a.Grow(1).IntersectOct(b).Canonical()
	if in.XLo > in.XHi || in.YLo > in.YHi || in.SLo > in.SHi || in.DLo > in.DHi {
		return false
	}
	return geom.Max64(in.XHi-in.XLo, in.YHi-in.YLo) >= m.minTouch()
}

// arc is one cached same-layer corridor adjacency: the neighbor tile and
// the center-to-center octilinear move cost.
type arc struct {
	cell, idx int
	cost      float64
}

// cellAdj caches the outgoing arcs of every tile in one cell. It is valid
// while no cell in the ring (the cell plus its eight neighbors) has been
// re-partitioned; ringGen records each ring cell's generation at build
// time so validation is a handful of integer compares.
type cellAdj struct {
	ring    []int
	ringGen []uint32
	arcs    [][]arc
}

// cellArcs returns the per-tile arc lists for the cell, rebuilding the
// cache when any ring cell was re-partitioned since the last build. This
// turns corridor-graph expansion from O(ring tiles · adjacency test) per
// A* pop into an amortized array walk: tile adjacency is geometric and
// only changes when a committed net re-partitions a nearby cell.
func (m *Model) cellArcs(layer, cell int) [][]arc {
	if e := m.adj[layer][cell]; e != nil && m.arcsValid(layer, e) {
		return e.arcs
	}
	e := m.buildArcs(layer, cell)
	m.adj[layer][cell] = e
	return e.arcs
}

func (m *Model) arcsValid(layer int, e *cellAdj) bool {
	for k, rc := range e.ring {
		m.Tiles(layer, rc) // force a rebuild so the generation is current
		if m.gen[layer][rc] != e.ringGen[k] {
			return false
		}
	}
	return true
}

func (m *Model) buildArcs(layer, cell int) *cellAdj {
	tiles := m.Tiles(layer, cell)
	bbs := m.TileBBs(layer, cell)
	centers := m.TileCenters(layer, cell)
	e := &cellAdj{ring: m.neighborCells(cell), arcs: make([][]arc, len(tiles))}
	for i := range tiles {
		// Ring order then index order, matching the seed's per-pop emit
		// order so heap tie-breaking (and thus chosen corridors) is
		// unchanged.
		for _, rc := range e.ring {
			rTiles := m.Tiles(layer, rc)
			rBBs := m.TileBBs(layer, rc)
			rCenters := m.TileCenters(layer, rc)
			for i2 := range rTiles {
				if rc == cell && i2 == i {
					continue
				}
				if m.adjacent(tiles[i], bbs[i], rTiles[i2], rBBs[i2]) {
					e.arcs[i] = append(e.arcs[i], arc{
						cell: rc, idx: i2,
						cost: geom.OctDist(centers[i], rCenters[i2]),
					})
				}
			}
		}
	}
	e.ringGen = make([]uint32, len(e.ring))
	for k, rc := range e.ring {
		e.ringGen[k] = m.gen[layer][rc]
	}
	return e
}

// snapshot freezes tile ids for one search.
type snapshot struct {
	m       *Model
	offsets [][]int   // [layer][cell] -> base id
	refs    []TileRef // id -> TileRef, precomputed so lookups are O(1)
	total   int
	sites   map[int][]ViaSite // by cell
}

func (m *Model) snapshot(sites []ViaSite) *snapshot {
	s := &snapshot{m: m, sites: map[int][]ViaSite{}}
	s.offsets = make([][]int, m.D.WireLayers)
	id := 0
	for l := 0; l < m.D.WireLayers; l++ {
		s.offsets[l] = make([]int, m.CellsX*m.CellsY)
		for c := 0; c < m.CellsX*m.CellsY; c++ {
			s.offsets[l][c] = id
			id += len(m.Tiles(l, c))
		}
	}
	s.total = id
	s.refs = make([]TileRef, id)
	for l := 0; l < m.D.WireLayers; l++ {
		for c := 0; c < m.CellsX*m.CellsY; c++ {
			base := s.offsets[l][c]
			for i := range m.Tiles(l, c) {
				s.refs[base+i] = TileRef{Layer: l, Cell: c, Idx: i}
			}
		}
	}
	for _, v := range sites {
		s.sites[v.Cell] = append(s.sites[v.Cell], v)
	}
	return s
}

func (s *snapshot) id(r TileRef) int { return s.offsets[r.Layer][r.Cell] + r.Idx }

func (s *snapshot) ref(id int) TileRef { return s.refs[id] }

// neighborCells returns cells within one ring of c plus c itself.
func (m *Model) neighborCells(c int) []int {
	cx, cy := c%m.CellsX, c/m.CellsX
	var out []int
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			nx, ny := cx+dx, cy+dy
			if nx < 0 || ny < 0 || nx >= m.CellsX || ny >= m.CellsY {
				continue
			}
			out = append(out, ny*m.CellsX+nx)
		}
	}
	return out
}

// TileNear returns the tile on the layer closest to p (searching p's cell
// and its ring), for terminals whose exact point sits inside a pad's
// clearance blockage.
func (m *Model) TileNear(layer int, p geom.Point) (TileRef, bool) {
	if r, ok := m.TileAt(layer, p); ok {
		return r, true
	}
	cells := m.cellsTouching(geom.RectOf(p, p))
	if len(cells) == 0 {
		return TileRef{}, false
	}
	best := TileRef{}
	bestD := math.Inf(1)
	found := false
	for _, c := range m.neighborCells(cells[0]) {
		for i, t := range m.Tiles(layer, c) {
			d := t.BBox().DistToPoint(p)
			if d < bestD {
				bestD = d
				best = TileRef{layer, c, i}
				found = true
			}
		}
	}
	return best, found
}

// FindCorridor runs A* on the octagonal-tile routing graph from the tile
// near (from, fromLayer) to the tile near (to, toLayer), changing layers
// only at the inserted via sites. It returns the tile path.
func (m *Model) FindCorridor(from geom.Point, fromLayer int, to geom.Point, toLayer int, sites []ViaSite, viaCost float64) ([]TileRef, bool) {
	startRef, ok1 := m.TileNear(fromLayer, from)
	goalRef, ok2 := m.TileNear(toLayer, to)
	if !ok1 || !ok2 {
		return nil, false
	}
	s := m.snapshot(sites)
	goalID := s.id(goalRef)

	expand := func(u int, emit func(int, float64)) {
		r := s.refs[u]
		// Same-layer adjacencies from the generation-validated cache; the
		// arc order matches the per-pop scan it replaces, so heap
		// tie-breaking (and the chosen corridor) is unchanged.
		arcs := m.cellArcs(r.Layer, r.Cell)
		for _, a := range arcs[r.Idx] {
			emit(s.id(TileRef{r.Layer, a.cell, a.idx}), a.cost)
		}
		// Via moves at sites inside this tile.
		if vs := s.sites[r.Cell]; len(vs) > 0 {
			region := m.Region(r)
			for _, v := range vs {
				if !region.Contains(v.P) {
					continue
				}
				for _, nl := range []int{r.Layer - 1, r.Layer + 1} {
					if nl < v.L0 || nl > v.L1 || nl < 0 || nl >= m.D.WireLayers {
						continue
					}
					if nr, ok := m.TileAt(nl, v.P); ok {
						emit(s.id(nr), viaCost)
					}
				}
			}
		}
	}
	h := func(u int) float64 {
		r := s.refs[u]
		d := geom.OctDist(m.TileCenters(r.Layer, r.Cell)[r.Idx], to)
		dl := r.Layer - toLayer
		if dl < 0 {
			dl = -dl
		}
		return d*0.5 + float64(dl)*viaCost*0.5
	}
	path, _, ok := graphs.AStar(s.total,
		[]graphs.StartState{{State: s.id(startRef)}},
		func(u int) bool { return u == goalID },
		expand, h)
	if !ok {
		return nil, false
	}
	out := make([]TileRef, len(path))
	for i, id := range path {
		out[i] = s.ref(id)
	}
	return out, true
}
