package qa

import (
	"bytes"
	"context"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/metrics"
	"rdlroute/internal/obs"
	"rdlroute/internal/router"
)

// routeStableWithTracer routes d with the given tracer and worker count
// and returns the lattice fingerprint plus the stable rdl-result/v1
// encoding.
func routeStableWithTracer(t *testing.T, d *design.Design, tr obs.Tracer, workers int) (uint64, []byte) {
	t.Helper()
	opts := flowOptions()
	opts.Workers = workers
	opts.Tracer = tr
	res, fp, err := router.RouteFingerprint(context.Background(), d, opts)
	if err != nil {
		t.Fatalf("%s: %v", d.Name, err)
	}
	enc, err := encodeResultStable(res)
	if err != nil {
		t.Fatalf("%s: encode: %v", d.Name, err)
	}
	return fp, enc
}

// assertTracerInvariant routes d with no tracer and with a live metrics
// bridge (at worker counts 1 and 2) and fails unless the lattice
// fingerprints and encoded result bytes are identical. This is the qa
// gate for the PR-6 observability contract: the bridge is purely
// observational — attaching production metrics to the flow must never
// perturb routing, at any worker count.
func assertTracerInvariant(t *testing.T, d *design.Design) {
	t.Helper()
	fpNop, encNop := routeStableWithTracer(t, d, obs.Nop(), 1)

	reg := metrics.NewRegistry()
	bridge := metrics.NewBridge(reg)
	for _, workers := range []int{1, 2} {
		fpBr, encBr := routeStableWithTracer(t, d, bridge, workers)
		if fpBr != fpNop {
			t.Errorf("%s: bridge-traced lattice fingerprint %x at workers=%d, untraced %x",
				d.Name, fpBr, workers, fpNop)
		}
		if !bytes.Equal(encBr, encNop) {
			t.Errorf("%s: workers=%d bridge-traced rdl-result/v1 bytes differ from untraced (%d vs %d bytes)",
				d.Name, workers, len(encBr), len(encNop))
		}
	}

	// The bridge must actually have observed the flow, or this gate is
	// vacuously green.
	fams, err := metrics.ParseText(bytes.NewReader(reg.Expose()))
	if err != nil {
		t.Fatalf("%s: exposition: %v", d.Name, err)
	}
	if fams["rdl_stage_duration_seconds"] == nil {
		t.Errorf("%s: bridge recorded no stage latencies — gate did not exercise the tracer", d.Name)
	}
}

// TestMetricsBridgeDeterminism: dense1 plus qa-generated irregular
// designs route byte-identically with and without the metrics bridge
// attached.
func TestMetricsBridgeDeterminism(t *testing.T) {
	spec, err := design.DenseSpec("dense1")
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	assertTracerInvariant(t, d)

	seeds := []int64{3, 17, 29}
	if testing.Short() || raceEnabled {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		assertTracerInvariant(t, Generate(seed))
	}
}
