package qa

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"rdlroute/internal/design"
)

// TestTranslateRoundTrip: translating there and back is the identity, and
// the transform never aliases the input.
func TestTranslateRoundTrip(t *testing.T) {
	d := Generate(3)
	orig := formatDesign(t, d)
	td := Translate(d, 5*design.Grid, -2*design.Grid)
	if formatDesign(t, d) != orig {
		t.Fatal("Translate mutated its input")
	}
	if err := td.Validate(); err != nil {
		t.Fatalf("translated design invalid: %v", err)
	}
	back := Translate(td, -5*design.Grid, 2*design.Grid)
	if formatDesign(t, back) != orig {
		t.Error("translate round-trip is not the identity")
	}
}

// TestMirrorInvolution: reflecting twice is the identity.
func TestMirrorInvolution(t *testing.T) {
	d := Generate(3)
	orig := formatDesign(t, d)
	md := MirrorX(d)
	if formatDesign(t, d) != orig {
		t.Fatal("MirrorX mutated its input")
	}
	if err := md.Validate(); err != nil {
		t.Fatalf("mirrored design invalid: %v", err)
	}
	if formatDesign(t, md) == orig {
		t.Error("mirror left an asymmetric design unchanged")
	}
	if formatDesign(t, MirrorX(md)) != orig {
		t.Error("mirror is not an involution")
	}
}

// endpointKeys renders each net's pad pair as an order-independent key.
func endpointKeys(d *design.Design) []string {
	keys := make([]string, len(d.Nets))
	for i, n := range d.Nets {
		a := fmt.Sprintf("%v:%d", n.P1.Kind, n.P1.Index)
		b := fmt.Sprintf("%v:%d", n.P2.Kind, n.P2.Index)
		keys[i] = a + "~" + b
	}
	sort.Strings(keys)
	return keys
}

// TestPermutePreservesNets: shuffling the net list must keep the multiset
// of connection requirements, renumber IDs positionally, and remap
// fixed-via net references to follow their nets.
func TestPermutePreservesNets(t *testing.T) {
	d := Generate(3)
	orig := formatDesign(t, d)
	rng := rand.New(rand.NewSource(99))
	pd := PermuteNets(d, rng)
	if formatDesign(t, d) != orig {
		t.Fatal("PermuteNets mutated its input")
	}
	if err := pd.Validate(); err != nil {
		t.Fatalf("permuted design invalid: %v", err)
	}
	a, b := endpointKeys(d), endpointKeys(pd)
	if len(a) != len(b) {
		t.Fatalf("net count changed: %d → %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("net endpoint multiset changed: %v vs %v", a, b)
		}
	}
	for i, n := range pd.Nets {
		if n.ID != i {
			t.Errorf("net at position %d has ID %d", i, n.ID)
		}
	}
	for _, v := range pd.FixedVias {
		if v.Net >= len(pd.Nets) {
			t.Errorf("fixed via references net %d of %d", v.Net, len(pd.Nets))
		}
	}
}
