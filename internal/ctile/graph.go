package ctile

import (
	"math"

	"rdlroute/internal/geom"
	"rdlroute/internal/graphs"
)

// ViaSite is an inserted via column: a position where the router may
// change layers, usable between wire layers [L0, L1] (paper III-C-3).
type ViaSite struct {
	Cell   int
	P      geom.Point
	L0, L1 int
}

// InsertVias performs the paper's via insertion: for every global cell,
// place a via at the center of the largest tile in the cell and project it
// through upper and lower layers until a blockage (a layer where the point
// is not in free space) stops it.
func (m *Model) InsertVias() []ViaSite {
	var sites []ViaSite
	for c := 0; c < m.CellsX*m.CellsY; c++ {
		bestLayer, bestIdx := -1, -1
		bestArea := 0.0
		for l := 0; l < m.D.WireLayers; l++ {
			for i, t := range m.Tiles(l, c) {
				if a := t.Area(); a > bestArea {
					bestArea = a
					bestLayer, bestIdx = l, i
				}
			}
		}
		if bestLayer < 0 {
			continue
		}
		p := m.Tiles(bestLayer, c)[bestIdx].Center()
		l0, l1 := bestLayer, bestLayer
		for l0 > 0 {
			if _, ok := m.TileAt(l0-1, p); !ok {
				break
			}
			l0--
		}
		for l1 < m.D.WireLayers-1 {
			if _, ok := m.TileAt(l1+1, p); !ok {
				break
			}
			l1++
		}
		if l1 > l0 {
			sites = append(sites, ViaSite{Cell: c, P: p, L0: l0, L1: l1})
		}
	}
	return sites
}

// minTouch is the minimum shared-boundary extent for two tiles to count as
// connected (a wire must fit through).
func (m *Model) minTouch() int64 { return m.D.Rules.WireWidth }

// adjacent reports whether two tiles on the same layer touch along a
// usable boundary. Both tiles must be canonical (as stored by Tiles).
func (m *Model) adjacent(a geom.Oct8, abb geom.Rect, b geom.Oct8, bbb geom.Rect) bool {
	if !abb.Expand(1).Intersects(bbb) {
		return false
	}
	in := a.Grow(1).IntersectOct(b).Canonical()
	if in.XLo > in.XHi || in.YLo > in.YHi || in.SLo > in.SHi || in.DLo > in.DHi {
		return false
	}
	return geom.Max64(in.XHi-in.XLo, in.YHi-in.YLo) >= m.minTouch()
}

// snapshot freezes tile ids for one search.
type snapshot struct {
	m       *Model
	offsets [][]int // [layer][cell] -> base id
	total   int
	sites   map[int][]ViaSite // by cell
}

func (m *Model) snapshot(sites []ViaSite) *snapshot {
	s := &snapshot{m: m, sites: map[int][]ViaSite{}}
	s.offsets = make([][]int, m.D.WireLayers)
	id := 0
	for l := 0; l < m.D.WireLayers; l++ {
		s.offsets[l] = make([]int, m.CellsX*m.CellsY)
		for c := 0; c < m.CellsX*m.CellsY; c++ {
			s.offsets[l][c] = id
			id += len(m.Tiles(l, c))
		}
	}
	s.total = id
	for _, v := range sites {
		s.sites[v.Cell] = append(s.sites[v.Cell], v)
	}
	return s
}

func (s *snapshot) id(r TileRef) int { return s.offsets[r.Layer][r.Cell] + r.Idx }

func (s *snapshot) ref(id int) TileRef {
	// Binary search over layers then cells.
	for l := 0; l < len(s.offsets); l++ {
		cells := s.offsets[l]
		var top int
		if l+1 < len(s.offsets) {
			top = s.offsets[l+1][0]
		} else {
			top = s.total
		}
		if id >= top {
			continue
		}
		lo, hi := 0, len(cells)-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if cells[mid] <= id {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return TileRef{Layer: l, Cell: lo, Idx: id - cells[lo]}
	}
	return TileRef{}
}

// neighborCells returns cells within one ring of c plus c itself.
func (m *Model) neighborCells(c int) []int {
	cx, cy := c%m.CellsX, c/m.CellsX
	var out []int
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			nx, ny := cx+dx, cy+dy
			if nx < 0 || ny < 0 || nx >= m.CellsX || ny >= m.CellsY {
				continue
			}
			out = append(out, ny*m.CellsX+nx)
		}
	}
	return out
}

// TileNear returns the tile on the layer closest to p (searching p's cell
// and its ring), for terminals whose exact point sits inside a pad's
// clearance blockage.
func (m *Model) TileNear(layer int, p geom.Point) (TileRef, bool) {
	if r, ok := m.TileAt(layer, p); ok {
		return r, true
	}
	cells := m.cellsTouching(geom.RectOf(p, p))
	if len(cells) == 0 {
		return TileRef{}, false
	}
	best := TileRef{}
	bestD := math.Inf(1)
	found := false
	for _, c := range m.neighborCells(cells[0]) {
		for i, t := range m.Tiles(layer, c) {
			d := t.BBox().DistToPoint(p)
			if d < bestD {
				bestD = d
				best = TileRef{layer, c, i}
				found = true
			}
		}
	}
	return best, found
}

// FindCorridor runs A* on the octagonal-tile routing graph from the tile
// near (from, fromLayer) to the tile near (to, toLayer), changing layers
// only at the inserted via sites. It returns the tile path.
func (m *Model) FindCorridor(from geom.Point, fromLayer int, to geom.Point, toLayer int, sites []ViaSite, viaCost float64) ([]TileRef, bool) {
	startRef, ok1 := m.TileNear(fromLayer, from)
	goalRef, ok2 := m.TileNear(toLayer, to)
	if !ok1 || !ok2 {
		return nil, false
	}
	s := m.snapshot(sites)
	goalID := s.id(goalRef)

	expand := func(u int, emit func(int, float64)) {
		r := s.ref(u)
		region := m.Region(r)
		rbb := m.TileBBs(r.Layer, r.Cell)[r.Idx]
		center := region.Center()
		// Same-layer adjacencies.
		for _, c := range m.neighborCells(r.Cell) {
			tiles := m.Tiles(r.Layer, c)
			bbs := m.TileBBs(r.Layer, c)
			for i := range tiles {
				if c == r.Cell && i == r.Idx {
					continue
				}
				if m.adjacent(region, rbb, tiles[i], bbs[i]) {
					emit(s.id(TileRef{r.Layer, c, i}), geom.OctDist(center, tiles[i].Center()))
				}
			}
		}
		// Via moves at sites inside this tile.
		for _, v := range s.sites[r.Cell] {
			if !region.Contains(v.P) {
				continue
			}
			for _, nl := range []int{r.Layer - 1, r.Layer + 1} {
				if nl < v.L0 || nl > v.L1 || nl < 0 || nl >= m.D.WireLayers {
					continue
				}
				if nr, ok := m.TileAt(nl, v.P); ok {
					emit(s.id(nr), viaCost)
				}
			}
		}
	}
	h := func(u int) float64 {
		r := s.ref(u)
		d := geom.OctDist(m.Region(r).Center(), to)
		dl := r.Layer - toLayer
		if dl < 0 {
			dl = -dl
		}
		return d*0.5 + float64(dl)*viaCost*0.5
	}
	path, _, ok := graphs.AStar(s.total,
		[]graphs.StartState{{State: s.id(startRef)}},
		func(u int) bool { return u == goalID },
		expand, h)
	if !ok {
		return nil, false
	}
	out := make([]TileRef, len(path))
	for i, id := range path {
		out[i] = s.ref(id)
	}
	return out, true
}
