package ctile

import (
	"math"

	"rdlroute/internal/geom"
)

// Corridor-search memoization for incremental (ECO) rerouting — the tile
// graph's counterpart of the lattice search memo (internal/lattice memo.go).
//
// Every observable the corridor A* reads is a pure function of per-(layer,
// cell) blocker lists: Tiles, TileBBs, TileCenters and the corridor arcs are
// all derived from the blockers of a cell and its ring, and the per-cell via
// sites are an explicit input. The model therefore keeps a journal — one
// order-sensitive content hash per (layer, cell), folded over every blocker
// the cell ever received — and a recorded corridor search stores the hashes
// of every (layer, cell) whose content it read plus the via-site content of
// every cell it expanded through. A hit is served only when all of them
// still match, which proves a live search would re-derive the identical
// tile path.
//
// Corridor A* states are (layer, cell) pairs with grid-derived ids, so the
// footprint is naturally local: a search's outcome depends only on the
// connectivity and via sites of the cells it expanded through (plus the
// endpoint rings TileNear scans), never on distant cells' content.
type CorridorMemo struct {
	prev, cur map[corKey][]*corEntry
	hits      int
	misses    int
	missNoKey int
	bytes     int64
}

// NewCorridorMemo returns an empty memo: the first run only records.
func NewCorridorMemo() *CorridorMemo {
	return &CorridorMemo{prev: map[corKey][]*corEntry{}, cur: map[corKey][]*corEntry{}}
}

// Next returns the memo for a follow-up run: this run's recordings become
// the read-only prev of the next.
func (m *CorridorMemo) Next() *CorridorMemo {
	return &CorridorMemo{prev: m.cur, cur: map[corKey][]*corEntry{}}
}

// Stats returns the hit/miss counters of the runs this memo was attached to.
func (m *CorridorMemo) Stats() (hits, misses int) { return m.hits, m.misses }

// MissKinds splits the miss counter: noKey misses had no recording under
// the request key, stale ones had recordings with changed cell content.
func (m *CorridorMemo) MissKinds() (noKey, stale int) {
	return m.missNoKey, m.misses - m.missNoKey
}

// SizeBytes approximates the heap retained by this run's recordings.
func (m *CorridorMemo) SizeBytes() int64 { return m.bytes }

type corKey struct{ a, b uint64 }

type corEntry struct {
	ok   bool
	path []TileRef
	// cells/hashes: journal content of every (layer, cell) the search read,
	// addressed as layer*ncells+cell.
	cells  []int32
	hashes []uint64
	// siteCells/siteHashes: via-site content of every cell the search
	// expanded a tile in (sites are read per popped cell).
	siteCells  []int32
	siteHashes []uint64
}

const corEntryBase = 160

func corEntrySize(e *corEntry) int64 {
	return corEntryBase + int64(len(e.path))*24 +
		int64(len(e.cells))*12 + int64(len(e.siteCells))*12
}

// valid reports whether every (layer, cell) content hash and via-site hash
// the recorded search read still matches the journal — the proof that a
// live search now would re-derive the identical result.
func (e *corEntry) valid(cj *corJournal, siteHash []uint64) bool {
	for n, ci := range e.cells {
		if cj.cells[ci] != e.hashes[n] {
			return false
		}
	}
	for n, c := range e.siteCells {
		if siteHash[c] != e.siteHashes[n] {
			return false
		}
	}
	return true
}

func (m *CorridorMemo) lookup(k corKey, cj *corJournal, siteHash []uint64) (*corEntry, bool) {
	for _, e := range m.cur[k] {
		if e.valid(cj, siteHash) {
			m.hits++
			return e, true
		}
	}
	for _, e := range m.prev[k] {
		if e.valid(cj, siteHash) {
			m.hits++
			m.cur[k] = append(m.cur[k], e)
			m.bytes += corEntrySize(e)
			return e, true
		}
	}
	m.misses++
	if len(m.cur[k]) == 0 && len(m.prev[k]) == 0 {
		m.missNoKey++
	}
	return nil, false
}

func (m *CorridorMemo) store(k corKey, e *corEntry) {
	m.cur[k] = append(m.cur[k], e)
	m.bytes += corEntrySize(e)
}

// corJournal tracks per-(layer, cell) blocker content for the memo, plus
// reusable scratch for one search's footprint (FindCorridor calls are
// sequential within a run). memo may be nil (AttachJournal): content
// hashing and footprints run for corridor-proof validation only, with
// nothing recorded across runs.
type corJournal struct {
	memo  *CorridorMemo
	cells []uint64 // [layer*ncells + cell] content hash

	// Via-site hashes per cell, rebuilt when the sites slice changes (the
	// router computes sites once per run and passes the same slice to every
	// FindCorridor call).
	siteHash []uint64
	sitesRef []ViaSite

	// Footprint scratch: cell-content reads and site reads of one search.
	fpBits []uint64
	fpList []int32
	spBits []uint64
	spList []int32
}

const (
	corFnvOffset = 14695981039346656037
	corFnvPrime  = 1099511628211
)

// corOpHash folds words into one well-distributed journal word (same
// construction as the lattice journal's opHash).
func corOpHash(words ...uint64) uint64 {
	h := uint64(corFnvOffset)
	for _, w := range words {
		h = (h ^ w) * corFnvPrime
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return h
}

// cellClampHash hashes the part of a blocker that can influence one cell's
// tiles. buildCell consumes a blocker through two paths only: its canonical
// bbox corners seed frame lines when strictly inside the cell box, and
// SubtractOct applies its eight canonical half-plane bounds as monotone
// min/max clamps against pieces confined to the cell. Along both paths,
// every bound value outside the cell's achievable range behaves exactly
// like the range endpoint (the frame-line test fails either way; the clamp
// either never binds or empties the piece either way), so clamping each
// canonical bound to the cell's range collapses precisely the values the
// cell cannot distinguish: equal clamped bounds imply an identical cell
// partition. This keeps a cell's journal hash stable when a long clearance
// band crossing it moves an endpoint several cells away.
func cellClampHash(shape geom.Oct8, box geom.Rect) uint64 {
	c := shape.Canonical()
	cl := func(v, lo, hi int64) uint64 {
		if v < lo {
			v = lo
		} else if v > hi {
			v = hi
		}
		return uint64(v)
	}
	sLo, sHi := box.X0+box.Y0, box.X1+box.Y1
	dLo, dHi := box.Y0-box.X1, box.Y1-box.X0
	return corOpHash(
		cl(c.XLo, box.X0, box.X1), cl(c.XHi, box.X0, box.X1),
		cl(c.YLo, box.Y0, box.Y1), cl(c.YHi, box.Y0, box.Y1),
		cl(c.SLo, sLo, sHi), cl(c.SHi, sLo, sHi),
		cl(c.DLo, dLo, dHi), cl(c.DHi, dLo, dHi))
}

// fold mixes one blocker op into a cell's content hash, order-sensitively.
func (cj *corJournal) fold(layer, cell, ncells int, h uint64) {
	k := layer*ncells + cell
	cj.cells[k] = (cj.cells[k]^h)*corFnvPrime ^ (h >> 17)
}

// AttachMemo enables corridor memoization on this model. It may be called at
// any point before the first FindCorridor: the blockers already present are
// folded into the journal here (per cell, in append order — the lists are
// the ground truth the tiles derive from) and later addBlocker calls fold
// incrementally. A nil memo detaches.
func (m *Model) AttachMemo(cm *CorridorMemo) {
	if cm == nil {
		m.cj = nil
		return
	}
	m.attachJournal(cm)
}

// AttachJournal enables cell-content journaling without a memo: corridor
// searches gain footprints and proofs (FindCorridorProof/ProofValid) but
// nothing is recorded across runs. The speculative router uses this when
// no corridor memo was supplied.
func (m *Model) AttachJournal() { m.attachJournal(nil) }

func (m *Model) attachJournal(cm *CorridorMemo) {
	n := m.CellsX * m.CellsY
	cj := &corJournal{memo: cm, cells: make([]uint64, m.D.WireLayers*n)}
	for k := range cj.cells {
		cj.cells[k] = corFnvOffset
	}
	for l := range m.blockers {
		for c, shapes := range m.blockers[l] {
			box := m.cellBox(c)
			for _, s := range shapes {
				cj.fold(l, c, n, cellClampHash(s, box))
			}
		}
	}
	cj.fpBits = make([]uint64, (m.D.WireLayers*n+63)/64)
	cj.spBits = make([]uint64, (n+63)/64)
	m.cj = cj
}

// CorridorMemoAttached returns the attached memo, or nil.
func (m *Model) CorridorMemoAttached() *CorridorMemo {
	if m.cj == nil {
		return nil
	}
	return m.cj.memo
}

// ensureSiteHashes returns the per-cell via-site content hashes for the
// given sites slice, rebuilding the cache when the slice changes.
func (cj *corJournal) ensureSiteHashes(m *Model, sites []ViaSite) []uint64 {
	same := cj.siteHash != nil && len(sites) == len(cj.sitesRef) &&
		(len(sites) == 0 || &sites[0] == &cj.sitesRef[0])
	if same {
		return cj.siteHash
	}
	n := m.CellsX * m.CellsY
	if cj.siteHash == nil {
		cj.siteHash = make([]uint64, n)
	} else {
		for i := range cj.siteHash {
			cj.siteHash[i] = 0
		}
	}
	for _, v := range sites {
		if v.Cell >= 0 && v.Cell < n {
			cj.siteHash[v.Cell] = corOpHash(uint64(v.Cell),
				uint64(v.P.X), uint64(v.P.Y), uint64(v.L0), uint64(v.L1))
		}
	}
	cj.sitesRef = sites
	return cj.siteHash
}

func (cj *corJournal) fpReset() {
	for _, k := range cj.fpList {
		cj.fpBits[k>>6] &^= 1 << (uint(k) & 63)
	}
	cj.fpList = cj.fpList[:0]
	for _, k := range cj.spList {
		cj.spBits[k>>6] &^= 1 << (uint(k) & 63)
	}
	cj.spList = cj.spList[:0]
}

// fpMarkRing records that the search read the content of the cell's ring on
// layers [layer−1, layer+1]: tile expansion reads the ring's tiles, arcs and
// centers on its own layer, and via moves probe tiles and centers one layer
// up and down.
func (m *Model) fpMarkRing(layer, cell int) {
	cj := m.cj
	n := m.CellsX * m.CellsY
	l0, l1 := layer-1, layer+1
	if l0 < 0 {
		l0 = 0
	}
	if l1 > m.D.WireLayers-1 {
		l1 = m.D.WireLayers - 1
	}
	for _, rc := range m.neighborCells(cell) {
		for l := l0; l <= l1; l++ {
			k := int32(l*n + rc)
			if cj.fpBits[k>>6]&(1<<(uint(k)&63)) == 0 {
				cj.fpBits[k>>6] |= 1 << (uint(k) & 63)
				cj.fpList = append(cj.fpList, k)
			}
		}
	}
}

// spMark records that the search read the via sites of one cell.
func (cj *corJournal) spMark(cell int) {
	k := int32(cell)
	if cj.spBits[k>>6]&(1<<(uint(k)&63)) == 0 {
		cj.spBits[k>>6] |= 1 << (uint(k) & 63)
		cj.spList = append(cj.spList, k)
	}
}

// snapshotEntry freezes the footprint scratch into a memo entry.
func (cj *corJournal) snapshotEntry(siteHash []uint64, ok bool, path []TileRef) *corEntry {
	e := &corEntry{ok: ok}
	if len(path) > 0 {
		e.path = make([]TileRef, len(path))
		copy(e.path, path)
	}
	e.cells = make([]int32, len(cj.fpList))
	e.hashes = make([]uint64, len(cj.fpList))
	for n, k := range cj.fpList {
		e.cells[n] = k
		e.hashes[n] = cj.cells[k]
	}
	e.siteCells = make([]int32, len(cj.spList))
	e.siteHashes = make([]uint64, len(cj.spList))
	for n, k := range cj.spList {
		e.siteCells[n] = k
		e.siteHashes[n] = siteHash[k]
	}
	return e
}

// corKeyFor hashes the request-determined inputs of a corridor search: the
// endpoints, layers, via cost and the model's frame (grid, outline, rules-
// derived clearances). Cell and site content is proven by the footprint.
func (m *Model) corKeyFor(from geom.Point, fromLayer int, to geom.Point, toLayer int, viaCost float64) corKey {
	a := uint64(corFnvOffset)
	b := uint64(0x9e3779b97f4a7c15)
	mix := func(v uint64) {
		a = (a ^ v) * corFnvPrime
		b += v + 0x9e3779b97f4a7c15
		b = (b ^ (b >> 31)) * 0xbf58476d1ce4e5b9
		b ^= b >> 27
	}
	mix(uint64(m.CellsX)<<32 | uint64(m.CellsY))
	mix(uint64(m.D.WireLayers))
	mix(uint64(m.D.Outline.X0))
	mix(uint64(m.D.Outline.Y0))
	mix(uint64(m.D.Outline.X1))
	mix(uint64(m.D.Outline.Y1))
	mix(uint64(m.clear))
	mix(uint64(m.minDim))
	mix(uint64(from.X))
	mix(uint64(from.Y))
	mix(uint64(to.X))
	mix(uint64(to.Y))
	mix(uint64(fromLayer)<<32 | uint64(toLayer))
	mix(math.Float64bits(viaCost))
	return corKey{a, b}
}
