#!/bin/sh
# Full verification: build everything, vet, then the whole test suite
# under the race detector (the obs sinks advertise concurrency safety;
# -race holds them to it). Tier-1 CI is `go build ./... && go test ./...`;
# this script is the stricter local gate. Pass extra go-test flags through,
# e.g. `scripts/verify.sh -short`.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./... =="
go build ./...
echo "== go vet ./... =="
go vet ./...
echo "== go test -race $* ./... =="
go test -race "$@" ./...
echo "== verify OK =="
