package geom

import (
	"fmt"
	"math"
)

// Orient is the orientation class of an X-architecture wire segment or tile
// boundary edge. The four wire orientations are H (horizontal), V
// (vertical), D45 (slope +1, a 45° wire) and D135 (slope −1, a 135° wire).
type Orient uint8

// Wire segment orientations.
const (
	OrientNone Orient = iota // degenerate or non-octilinear
	OrientH                  // horizontal: y = c
	OrientV                  // vertical:   x = c
	OrientD45                // slope +1:   y − x = c
	OrientD135               // slope −1:   x + y = c
)

// String implements fmt.Stringer.
func (o Orient) String() string {
	switch o {
	case OrientH:
		return "H"
	case OrientV:
		return "V"
	case OrientD45:
		return "D45"
	case OrientD135:
		return "D135"
	default:
		return "none"
	}
}

// LineCoeff returns the (a, b) coefficients of the orientation's carrier
// line a·x + b·y = c. The pairs are (0,1) for H, (1,0) for V, (−1,1) for
// D45 and (1,1) for D135.
func (o Orient) LineCoeff() (a, b int64) {
	switch o {
	case OrientH:
		return 0, 1
	case OrientV:
		return 1, 0
	case OrientD45:
		return -1, 1
	case OrientD135:
		return 1, 1
	default:
		return 0, 0
	}
}

// CValue returns the c value of the orientation's carrier line a·x+b·y = c
// through p.
func (o Orient) CValue(p Point) int64 {
	a, b := o.LineCoeff()
	return a*p.X + b*p.Y
}

// Diagonal reports whether o is one of the two diagonal orientations.
func (o Orient) Diagonal() bool { return o == OrientD45 || o == OrientD135 }

// SegDir is a unit step in one of the eight compass directions.
type SegDir struct {
	DX, DY int64 // each in {−1, 0, +1}, not both zero
}

// DirTurnOK reports whether two consecutive directed unit steps form a
// legal joint: straight (0°), 90°, or 135° turns are allowed; 45° and 180°
// turns are not.
func DirTurnOK(d1, d2 SegDir) bool {
	// Turning by 0° (straight), 45° (a 135° interior angle) or 90° (a right
	// angle) is legal; turning by 135° (a 45° interior angle) or 180° (a
	// U-turn) is not.
	a1 := dirSector(d1)
	a2 := dirSector(d2)
	diff := (a2 - a1 + 8) % 8
	if diff > 4 {
		diff = 8 - diff
	}
	return diff <= 2
}

// dirSector maps a compass step to its 45°-sector index 0..7 (E=0, NE=1,
// N=2, NW=3, W=4, SW=5, S=6, SE=7).
func dirSector(d SegDir) int {
	switch {
	case d.DX > 0 && d.DY == 0:
		return 0
	case d.DX > 0 && d.DY > 0:
		return 1
	case d.DX == 0 && d.DY > 0:
		return 2
	case d.DX < 0 && d.DY > 0:
		return 3
	case d.DX < 0 && d.DY == 0:
		return 4
	case d.DX < 0 && d.DY < 0:
		return 5
	case d.DX == 0 && d.DY < 0:
		return 6
	default:
		return 7
	}
}

// Segment is a closed line segment between two integer points.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{a, b} }

// String implements fmt.Stringer.
func (s Segment) String() string { return fmt.Sprintf("%v-%v", s.A, s.B) }

// Degenerate reports whether the segment is a single point.
func (s Segment) Degenerate() bool { return s.A.Eq(s.B) }

// Orient returns the orientation class of s, or OrientNone if s is
// degenerate or not octilinear.
func (s Segment) Orient() Orient {
	dx := s.B.X - s.A.X
	dy := s.B.Y - s.A.Y
	switch {
	case dx == 0 && dy == 0:
		return OrientNone
	case dy == 0:
		return OrientH
	case dx == 0:
		return OrientV
	case dx == dy:
		return OrientD45
	case dx == -dy:
		return OrientD135
	default:
		return OrientNone
	}
}

// Octilinear reports whether s is a legal X-architecture segment.
func (s Segment) Octilinear() bool { return s.Orient() != OrientNone }

// Len returns the Euclidean length of s.
func (s Segment) Len() float64 { return Euclid(s.A, s.B) }

// BBox returns the bounding rectangle of s.
func (s Segment) BBox() Rect { return RectOf(s.A, s.B) }

// Dir returns the unit compass step from A toward B, or the zero SegDir for
// a degenerate segment. Only meaningful for octilinear segments.
func (s Segment) Dir() SegDir {
	return SegDir{sign(s.B.X - s.A.X), sign(s.B.Y - s.A.Y)}
}

func sign(v int64) int64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// Reverse returns the segment with endpoints swapped.
func (s Segment) Reverse() Segment { return Segment{s.B, s.A} }

// ContainsPoint reports whether p lies on s (endpoints inclusive).
// Exact for all integer segments.
func (s Segment) ContainsPoint(p Point) bool {
	if Cross(s.A, s.B, p) != 0 {
		return false
	}
	return p.X >= Min64(s.A.X, s.B.X) && p.X <= Max64(s.A.X, s.B.X) &&
		p.Y >= Min64(s.A.Y, s.B.Y) && p.Y <= Max64(s.A.Y, s.B.Y)
}

// IntersectKind classifies how two segments meet.
type IntersectKind uint8

// Segment intersection classes.
const (
	NoIntersection   IntersectKind = iota
	ProperCross                    // interiors cross at a single point
	Touch                          // share at least one point, but no proper crossing
	OverlapCollinear               // collinear with a shared sub-segment of positive length
)

// Intersect classifies the intersection of s and t exactly.
func (s Segment) Intersect(t Segment) IntersectKind {
	d1 := Cross(t.A, t.B, s.A)
	d2 := Cross(t.A, t.B, s.B)
	d3 := Cross(s.A, s.B, t.A)
	d4 := Cross(s.A, s.B, t.B)

	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return ProperCross
	}

	if d1 == 0 && d2 == 0 && d3 == 0 && d4 == 0 && !s.Degenerate() && !t.Degenerate() {
		// Collinear: check 1D overlap extent.
		lo1, hi1 := orderOn(s)
		lo2, hi2 := orderOn(t)
		// Project on dominant axis.
		if overlap1D(lo1, hi1, lo2, hi2) {
			// Positive-length overlap vs a single shared endpoint.
			if sharedLen(s, t) {
				return OverlapCollinear
			}
			return Touch
		}
		return NoIntersection
	}

	if (d1 == 0 && t.ContainsPoint(s.A)) || (d2 == 0 && t.ContainsPoint(s.B)) ||
		(d3 == 0 && s.ContainsPoint(t.A)) || (d4 == 0 && s.ContainsPoint(t.B)) {
		return Touch
	}
	return NoIntersection
}

// orderOn returns the endpoints of s ordered lexicographically.
func orderOn(s Segment) (lo, hi Point) {
	a, b := s.A, s.B
	if a.X > b.X || (a.X == b.X && a.Y > b.Y) {
		a, b = b, a
	}
	return a, b
}

func overlap1D(lo1, hi1, lo2, hi2 Point) bool {
	lessEq := func(p, q Point) bool { return p.X < q.X || (p.X == q.X && p.Y <= q.Y) }
	return lessEq(lo1, hi2) && lessEq(lo2, hi1)
}

// sharedLen reports whether two collinear, 1D-overlapping segments share a
// sub-segment of positive length (as opposed to a single point).
func sharedLen(s, t Segment) bool {
	lo1, hi1 := orderOn(s)
	lo2, hi2 := orderOn(t)
	lo := lo1
	if lo2.X > lo.X || (lo2.X == lo.X && lo2.Y > lo.Y) {
		lo = lo2
	}
	hi := hi1
	if hi2.X < hi.X || (hi2.X == hi.X && hi2.Y < hi.Y) {
		hi = hi2
	}
	return !lo.Eq(hi)
}

// Crosses reports whether s and t conflict as wires of different nets would:
// a proper crossing, a collinear overlap, or an interior touch all count.
// Two segments that only share endpoints do not count (routes of different
// nets never share endpoints; within a net, joints are expected).
func (s Segment) Crosses(t Segment) bool {
	switch s.Intersect(t) {
	case ProperCross, OverlapCollinear:
		return true
	case Touch:
		// A touch at a shared endpoint is not a crossing; an interior touch is.
		endpointOnly := (s.A.Eq(t.A) || s.A.Eq(t.B) || s.B.Eq(t.A) || s.B.Eq(t.B))
		if !endpointOnly {
			return true
		}
		return false
	default:
		return false
	}
}

// PointSegDist returns the Euclidean distance from p to segment s.
func PointSegDist(p Point, s Segment) float64 {
	return pointSegDistF(p.F(), s.A.F(), s.B.F())
}

func pointSegDistF(p, a, b PointF) float64 {
	ab := b.Sub(a)
	ap := p.Sub(a)
	den := ab.X*ab.X + ab.Y*ab.Y
	if den == 0 {
		return EuclidF(p, a)
	}
	t := (ap.X*ab.X + ap.Y*ab.Y) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	proj := a.Add(ab.Scale(t))
	return EuclidF(p, proj)
}

// SegSegDist returns the minimum Euclidean distance between segments s and
// t; 0 when they intersect.
func SegSegDist(s, t Segment) float64 {
	if s.Intersect(t) != NoIntersection {
		return 0
	}
	d := PointSegDist(s.A, t)
	d = math.Min(d, PointSegDist(s.B, t))
	d = math.Min(d, PointSegDist(t.A, s))
	d = math.Min(d, PointSegDist(t.B, s))
	return d
}

// LineIntersection returns the intersection point of the carrier lines of
// orientations o1 through p1 and o2 through p2, in float coordinates.
// ok is false when the lines are parallel.
func LineIntersection(o1 Orient, c1 int64, o2 Orient, c2 int64) (PointF, bool) {
	a1, b1 := o1.LineCoeff()
	a2, b2 := o2.LineCoeff()
	det := a1*b2 - a2*b1
	if det == 0 {
		return PointF{}, false
	}
	x := float64(c1*b2-c2*b1) / float64(det)
	y := float64(a1*c2-a2*c1) / float64(det)
	return PointF{x, y}, true
}
