package layout

import (
	"math"
	"sort"

	"rdlroute/internal/geom"
)

// Quality summarizes how close a layout's routed nets are to the
// octilinear lower bound (the shortest possible X-architecture connection
// between each net's pads, ignoring all blockages).
type Quality struct {
	Nets       int     // routed nets measured
	LowerBound float64 // Σ octilinear pad-to-pad distances
	Actual     float64 // Σ routed wirelength
	// Detour statistics: per-net actual/lower-bound ratios.
	MeanDetour float64
	P50Detour  float64
	P95Detour  float64
	MaxDetour  float64
	MaxNet     int // net with the worst detour
}

// QualityStats computes the detour quality of all routed nets.
func (l *Layout) QualityStats() Quality {
	perNet := map[int]float64{}
	for i := range l.Routes {
		r := &l.Routes[i]
		if l.Routed(r.Net) {
			perNet[r.Net] += r.Len()
		}
	}
	q := Quality{MaxNet: -1}
	var ratios []float64
	for net, actual := range perNet {
		n := l.D.Nets[net]
		lb := geom.OctDist(l.D.PadCenter(n.P1), l.D.PadCenter(n.P2))
		if lb < 1 {
			lb = 1
		}
		ratio := actual / lb
		q.Nets++
		q.LowerBound += lb
		q.Actual += actual
		q.MeanDetour += ratio
		if ratio > q.MaxDetour {
			q.MaxDetour = ratio
			q.MaxNet = net
		}
		ratios = append(ratios, ratio)
	}
	if q.Nets == 0 {
		return q
	}
	q.MeanDetour /= float64(q.Nets)
	sort.Float64s(ratios)
	q.P50Detour = percentile(ratios, 0.50)
	q.P95Detour = percentile(ratios, 0.95)
	return q
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := p * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
